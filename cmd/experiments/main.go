// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 2 and 4, Figures 5 and 6), the ablation sweeps
// (confidence threshold, cut-at-loads) and the headline summary, writing
// aligned text tables to stdout (or -out).
//
// Runs are resumable: results are cached on disk keyed by a content hash
// of each cell's spec and machine configuration, so a second invocation —
// after a crash, or with a larger grid — only simulates missing cells.
//
// Usage:
//
//	experiments                 # everything, default budget, cache in .simcache
//	experiments -n 500000       # bigger per-run instruction budget
//	experiments -only fig6      # one artifact: table2 table4 fig5a fig5b fig6
//	                            #   sweep-conf sweep-cut
//	experiments -cache ""       # disable the result cache
//	experiments -trace-dir ""   # keep traces in memory only (no .simtraces)
//	experiments -no-traces      # one functional-VM run per cell (old behaviour)
//	experiments -json out.json  # raw matrix export (also -csv out.csv)
//
// Each benchmark's correct-path stream is recorded once into the trace
// store and replayed by every (depth × predictor) configuration, so a cold
// full sweep executes the functional VM eight times instead of once per
// cell; recorded traces persist under -trace-dir and later runs skip even
// those executions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func main() {
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget per run")
	only := flag.String("only", "", "render one artifact: table2 table4 fig5a fig5b fig6 sweep-conf sweep-cut")
	outPath := flag.String("out", "", "write to this file instead of stdout")
	csvPath := flag.String("csv", "", "additionally export the raw matrix as CSV")
	jsonPath := flag.String("json", "", "additionally export the raw matrix (full stats) as JSON")
	cacheDir := flag.String("cache", ".simcache", "result cache directory (empty = no cache)")
	traceDir := flag.String("trace-dir", ".simtraces", "trace store directory (empty = record+replay in memory only)")
	noTraces := flag.Bool("no-traces", false, "disable the trace store: every cell runs its own functional VM")
	traceMem := flag.Int64("trace-mem", 0, "resident decoded-trace budget in MiB (0 = default)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	sweepDepth := flag.Int("sweep-depth", 20, "pipeline depth for the ablation sweeps")
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	emit := func(t sim.Table) {
		if err := t.Render(out); err != nil {
			fail(err)
		}
	}

	if *only == "table2" || *only == "" {
		emit(sim.Table2())
	}
	if *only == "table4" || *only == "" {
		emit(sim.Table4())
	}
	if *only == "table2" || *only == "table4" {
		return
	}

	eng := &sim.Engine{Workers: *workers}
	if *cacheDir != "" {
		c, err := sim.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		eng.Cache = c
	}
	if !*noTraces {
		ts, err := sim.OpenTraceStore(*traceDir, *traceMem<<20)
		if err != nil {
			fail(err)
		}
		eng.Traces = ts
	}

	start := time.Now()
	wantSweeps := *only == "" || *only == "sweep-conf" || *only == "sweep-cut"
	wantMatrix := !wantSweeps || *only == ""
	if !wantMatrix && (*csvPath != "" || *jsonPath != "") {
		fmt.Fprintln(os.Stderr, "experiments: -csv/-json export the full matrix; ignored with -only", *only)
	}

	var mx *sim.Matrix
	if wantMatrix {
		fmt.Fprintf(os.Stderr, "experiments: running %d matrix cells (%d insts each)...\n",
			len(workload.Names)*len(sim.Depths)*len(sim.Modes), *n)
		var err error
		mx, err = eng.RunMatrix(workload.Names, sim.Depths, sim.Modes, *n)
		if err != nil {
			// Partial grids still render (missing cells show n/a); report
			// the failures and degrade rather than discarding the run.
			fmt.Fprintln(os.Stderr, "experiments: some cells failed:", err)
		}
	}

	var confSweep, cutSweep *sim.SweepResult
	if *only == "" || *only == "sweep-conf" {
		s, err := eng.RunConfThresholdSweep(workload.Names, *sweepDepth, sim.DefaultConfThresholds, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: some sweep cells failed:", err)
		}
		confSweep = s
	}
	if *only == "" || *only == "sweep-cut" {
		s, err := eng.RunCutAtLoadsSweep(workload.Names, *sweepDepth, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: some sweep cells failed:", err)
		}
		cutSweep = s
	}

	fmt.Fprintf(os.Stderr, "experiments: done in %v (%d simulated, %d from cache)\n",
		time.Since(start).Round(time.Millisecond), eng.Simulated(), eng.CacheHits())
	if ts := eng.Traces; ts != nil {
		fmt.Fprintf(os.Stderr, "experiments: traces: %d VM runs, %d memory hits, %d disk hits\n",
			ts.Recorded(), ts.MemHits(), ts.DiskHits())
		if n := ts.PersistErrs(); n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: warning: %d trace files could not be persisted\n", n)
		}
	}

	if mx != nil && *csvPath != "" {
		if err := writeFile(*csvPath, func(w io.Writer) error { return mx.WriteCSV(w, sim.Depths) }); err != nil {
			fail(err)
		}
	}
	if mx != nil && *jsonPath != "" {
		if err := writeFile(*jsonPath, func(w io.Writer) error { return mx.WriteJSON(w, sim.Depths) }); err != nil {
			fail(err)
		}
	}

	if *only == "fig5a" || *only == "" {
		emit(sim.Fig5a(mx))
	}
	if *only == "fig5b" || *only == "" {
		emit(sim.Fig5b(mx, 20))
	}
	if *only == "fig6" || *only == "" {
		for _, d := range sim.Depths {
			emit(sim.Fig6Accuracy(mx, d))
			t, _ := sim.Fig6IPC(mx, d)
			emit(t)
		}
		head := sim.Table{
			Title:  "Headline: average IPC improvement over the two-level 2Bc-gskew baseline",
			Note:   "paper: +12.6% at 20 stages, +15.6% at 60 stages (ARVI current value)",
			Header: []string{"depth", "arvi-current", "arvi-loadback", "arvi-perfect"},
		}
		improvement := func(s sim.IPCSummary, md cpu.PredMode) string {
			v, ok := s.AvgImprovement[md]
			if !ok {
				return "n/a" // every cell of this mode is missing at this depth
			}
			return fmt.Sprintf("%+.1f%%", 100*v)
		}
		for _, d := range sim.Depths {
			_, s := sim.Fig6IPC(mx, d)
			head.AddRow(fmt.Sprintf("%d", d),
				improvement(s, cpu.PredARVICurrent),
				improvement(s, cpu.PredARVILoadBack),
				improvement(s, cpu.PredARVIPerfect))
		}
		emit(head)
	}
	if confSweep != nil {
		emit(sim.SweepAccuracyTable(confSweep))
		emit(sim.SweepARVIUseTable(confSweep))
		emit(sim.SweepIPCTable(confSweep))
	}
	if cutSweep != nil {
		emit(sim.SweepAccuracyTable(cutSweep))
		emit(sim.SweepIPCTable(cutSweep))
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

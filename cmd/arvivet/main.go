// Command arvivet is the repository's multichecker: it runs the arvivet
// analyzer suite (internal/analysis/...) over the module and exits
// non-zero if any contract is violated.
//
// Usage:
//
//	go run ./cmd/arvivet [packages]   (default ./...)
//	go run ./cmd/arvivet -list        list analyzers and their one-line docs
//
// Diagnostics print in the conventional file:line:col form, sorted, so
// the output is stable across runs and diffable in CI.
//
// The stock x/tools passes the suite complements: `shadow` is provided by
// the in-tree reimplementation (internal/analysis/shadow); `nilness`
// requires SSA construction, which the dependency-free toolchain policy
// rules out, so CI covers that ground with the pinned staticcheck run
// instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bitveclen"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/shadow"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	bitveclen.Analyzer,
	detmap.Analyzer,
	nondet.Analyzer,
	errdrop.Analyzer,
	shadow.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: arvivet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	world, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvivet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(world, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvivet:", err)
		os.Exit(2)
	}
	diags = append(world.Malformed, diags...)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Command arvivet is the repository's multichecker: it runs the arvivet
// analyzer suite (internal/analysis/...) over the module and exits
// non-zero if any contract is violated.
//
// Usage:
//
//	go run ./cmd/arvivet [packages]         (default ./...)
//	go run ./cmd/arvivet -list              list analyzers and their one-line docs
//	go run ./cmd/arvivet -only nilness,hotpanic ./...
//	go run ./cmd/arvivet -json ./...        machine-readable diagnostics
//	go run ./cmd/arvivet -github ./...      GitHub ::error annotations
//
// Diagnostics print in the conventional file:line:col form, sorted, so
// the output is stable across runs and diffable in CI. -github (on by
// default when GITHUB_ACTIONS is set) additionally emits
// ::error file=...,line=... workflow commands so findings surface inline
// on pull requests.
//
// The stock x/tools passes the suite complements: `shadow` and `nilness`
// are provided by the in-tree reimplementations — nilness runs on the
// internal/analysis/cfg + dataflow layer, so the old "needs SSA, out of
// scope" caveat no longer applies — and `hotpanic` proves //arvi:hotpath
// functions free of implicit runtime panics, which no stock pass covers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/bitveclen"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/hotpanic"
	"repro/internal/analysis/nilness"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/shadow"
)

var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	bitveclen.Analyzer,
	detmap.Analyzer,
	nondet.Analyzer,
	errdrop.Analyzer,
	shadow.Analyzer,
	nilness.Analyzer,
	hotpanic.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	github := flag.Bool("github", os.Getenv("GITHUB_ACTIONS") != "",
		"emit GitHub ::error annotations alongside the plain diagnostics (default: on under GITHUB_ACTIONS)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: arvivet [-list] [-only a,b] [-json] [-github] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	suite := analyzers
	if *only != "" {
		suite = nil
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "arvivet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	world, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvivet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(world, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvivet:", err)
		os.Exit(2)
	}
	diags = append(world.Malformed, diags...)

	switch {
	case *jsonOut:
		printJSON(diags)
	default:
		for _, d := range diags {
			fmt.Println(d)
			if *github {
				fmt.Printf("::error file=%s,line=%d,col=%d,title=arvivet/%s::%s\n",
					d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, githubEscape(d.Message))
			}
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func printJSON(diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "arvivet:", err)
		os.Exit(2)
	}
}

// githubEscape encodes the characters GitHub workflow commands reserve.
func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Command arvid serves the experiment engine as a long-running HTTP/JSON
// daemon. Where cmd/arvisim and cmd/experiments pay process startup,
// cache open and trace decode per invocation, arvid opens the result
// cache and trace store once and keeps the engine (and its per-
// configuration pool of reset-able cpu.Engines) resident, so repeated
// queries are warm cache hits in microseconds.
//
// The cache and trace directories default to the same `.simcache` /
// `.simtraces` the CLIs use: a sweep primed by `experiments` serves
// warm from arvid, and cells first simulated by arvid are cache hits for
// the CLIs.
//
// Usage:
//
//	arvid                              # serve on :8744, cache in .simcache
//	arvid -addr 127.0.0.1:9000         # explicit listen address
//	arvid -max-inflight 4              # at most 4 concurrent computations
//	arvid -max-insts 10000000          # per-request total instruction cap
//	arvid -cache "" -no-traces         # stateless (everything simulates)
//
// Scaling out (see DESIGN.md's distributed execution section):
//
//	arvid -role worker -addr :8745                         # a worker node
//	arvid -role coordinator \
//	      -workers-list http://h1:8745,http://h2:8745      # fan sweeps out
//	arvid -cache-peers http://h2:8745 -cache-push          # warm peer caches
//
// A coordinator decomposes /v1/matrix and /v1/study/* into per-cell jobs
// keyed by the result cache's own content hashes, fans them out to the
// workers with retries and backoff, and merges answers byte-identically
// to a single-node run; -cache-peers lets any daemon serve local cache
// misses from its peers' caches over GET/PUT /v1/cache/{key}.
//
//	curl localhost:8744/healthz
//	curl localhost:8744/v1/bench
//	curl -d '{"bench":"m88ksim","depth":20,"mode":"arvi-current"}' localhost:8744/v1/run
//	curl -d '{"depths":[20],"max_insts":100000}' localhost:8744/v1/matrix
//	curl -d '{"mixes":["ijpeg+li"]}' localhost:8744/v1/study/smt
//	curl -d '{"benches":["li"],"dep_threshold":4}' localhost:8744/v1/study/vpred
//	curl localhost:8744/v1/artifacts/fig6?n=100000
//
// See internal/server for the endpoint contracts (byte-stable warm hits,
// singleflight coalescing of duplicate in-flight requests, 429 beyond
// -max-inflight, 400 beyond -max-insts) and the README's "Serving"
// section for the endpoint table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/storage"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arvid:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8744", "listen address")
	cacheDir := flag.String("cache", ".simcache", "result cache directory shared with the CLIs (empty = no cache)")
	traceDir := flag.String("trace-dir", ".simtraces", "trace store directory shared with the CLIs (empty = record+replay in memory only)")
	noTraces := flag.Bool("no-traces", false, "disable the trace store: every cell runs its own functional VM")
	traceMem := flag.Int64("trace-mem", 0, "resident decoded-trace budget in MiB (0 = default)")
	workers := flag.Int("workers", 0, "max concurrent simulations inside the engine (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently computing requests; excess get 429 (0 = 2x GOMAXPROCS)")
	maxInsts := flag.Int64("max-insts", server.DefaultMaxTotalInsts, "per-request cap on total instruction budget (per-cell budget x cells)")
	defaultInsts := flag.Int64("default-insts", sim.DefaultMaxInsts, "per-cell instruction budget when a request omits max_insts")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request simulation deadline; past it the request gets 504 (0 = no timeout)")
	role := flag.String("role", "solo", "daemon role: solo (compute everything locally), worker (a solo node a coordinator fans jobs to), or coordinator (distribute sweeps to -workers-list)")
	workersList := flag.String("workers-list", "", "comma-separated worker base URLs for the coordinator role (more can join via POST /v1/workers)")
	cachePeers := flag.String("cache-peers", "", "comma-separated peer daemon base URLs to serve local cache misses from (GET /v1/cache)")
	cachePush := flag.Bool("cache-push", false, "also replicate freshly computed cache entries to -cache-peers (PUT /v1/cache)")
	distRetries := flag.Int("dist-retries", 0, "extra workers a failed job is offered before local fallback (0 = default)")
	distBackoff := flag.Duration("dist-backoff", 0, "delay before a job's first retry, doubling per retry (0 = default)")
	distTimeout := flag.Duration("dist-timeout", 0, "per-job HTTP timeout for coordinator->worker calls (0 = default)")
	flag.Parse()

	if *role != "solo" && *role != "worker" && *role != "coordinator" {
		fmt.Fprintf(os.Stderr, "arvid: -role %q out of range (need solo, worker or coordinator)\n", *role)
		os.Exit(2)
	}
	if *role != "coordinator" && *workersList != "" {
		fmt.Fprintf(os.Stderr, "arvid: -workers-list only applies to -role coordinator\n")
		os.Exit(2)
	}

	if *maxInsts <= 0 {
		fmt.Fprintf(os.Stderr, "arvid: -max-insts %d out of range (need >= 1)\n", *maxInsts)
		os.Exit(2)
	}
	if *defaultInsts <= 0 {
		fmt.Fprintf(os.Stderr, "arvid: -default-insts %d out of range (need >= 1)\n", *defaultInsts)
		os.Exit(2)
	}

	eng := &sim.Engine{Workers: *workers}
	if *cacheDir != "" {
		c, err := sim.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		if peers := splitList(*cachePeers); len(peers) > 0 {
			c.SetPeers(storage.NewPeerKV(peers, nil), *cachePush)
		}
		eng.Cache = c
	}
	if !*noTraces {
		ts, err := sim.OpenTraceStore(*traceDir, *traceMem<<20)
		if err != nil {
			fail(err)
		}
		eng.Traces = ts
	}

	var coord *dist.Coordinator
	if *role == "coordinator" {
		coord = &dist.Coordinator{
			Local:   eng,
			Retries: *distRetries,
			Backoff: *distBackoff,
		}
		if *distTimeout > 0 {
			coord.Client = &http.Client{Timeout: *distTimeout}
		}
		coord.SetWorkers(splitList(*workersList))
	}

	h := server.New(server.Config{
		Engine:         eng,
		MaxInflight:    *maxInflight,
		MaxTotalInsts:  *maxInsts,
		DefaultInsts:   *defaultInsts,
		RequestTimeout: *requestTimeout,
		Coordinator:    coord,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// Simulations can legitimately take a while; bound only the parts
		// a slow or hostile client controls.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "arvid: serving on %s as %s (cache %q, traces %q)\n", *addr, *role, *cacheDir, traceLabel(*noTraces, *traceDir))

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "arvid: shutting down")
	// Refuse new requests (503 + Retry-After) and cancel in-flight engine
	// work before asking the listener to drain, so Shutdown is bounded by
	// a cancellation checkpoint instead of a full sweep.
	h.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fail(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
}

// splitList splits a comma-separated URL list, dropping empty elements
// (so a trailing comma or an unset flag is not a phantom peer).
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// traceLabel names the trace tier for the startup line.
func traceLabel(disabled bool, dir string) string {
	if disabled {
		return "(disabled)"
	}
	if dir == "" {
		return "(memory only)"
	}
	return dir
}

// Command arvid serves the experiment engine as a long-running HTTP/JSON
// daemon. Where cmd/arvisim and cmd/experiments pay process startup,
// cache open and trace decode per invocation, arvid opens the result
// cache and trace store once and keeps the engine (and its per-
// configuration pool of reset-able cpu.Engines) resident, so repeated
// queries are warm cache hits in microseconds.
//
// The cache and trace directories default to the same `.simcache` /
// `.simtraces` the CLIs use: a sweep primed by `experiments` serves
// warm from arvid, and cells first simulated by arvid are cache hits for
// the CLIs.
//
// Usage:
//
//	arvid                              # serve on :8744, cache in .simcache
//	arvid -addr 127.0.0.1:9000         # explicit listen address
//	arvid -max-inflight 4              # at most 4 concurrent computations
//	arvid -max-insts 10000000          # per-request total instruction cap
//	arvid -cache "" -no-traces         # stateless (everything simulates)
//
//	curl localhost:8744/healthz
//	curl localhost:8744/v1/bench
//	curl -d '{"bench":"m88ksim","depth":20,"mode":"arvi-current"}' localhost:8744/v1/run
//	curl -d '{"depths":[20],"max_insts":100000}' localhost:8744/v1/matrix
//	curl -d '{"mixes":["ijpeg+li"]}' localhost:8744/v1/study/smt
//	curl -d '{"benches":["li"],"dep_threshold":4}' localhost:8744/v1/study/vpred
//	curl localhost:8744/v1/artifacts/fig6?n=100000
//
// See internal/server for the endpoint contracts (byte-stable warm hits,
// singleflight coalescing of duplicate in-flight requests, 429 beyond
// -max-inflight, 400 beyond -max-insts) and the README's "Serving"
// section for the endpoint table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/sim"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arvid:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8744", "listen address")
	cacheDir := flag.String("cache", ".simcache", "result cache directory shared with the CLIs (empty = no cache)")
	traceDir := flag.String("trace-dir", ".simtraces", "trace store directory shared with the CLIs (empty = record+replay in memory only)")
	noTraces := flag.Bool("no-traces", false, "disable the trace store: every cell runs its own functional VM")
	traceMem := flag.Int64("trace-mem", 0, "resident decoded-trace budget in MiB (0 = default)")
	workers := flag.Int("workers", 0, "max concurrent simulations inside the engine (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently computing requests; excess get 429 (0 = 2x GOMAXPROCS)")
	maxInsts := flag.Int64("max-insts", server.DefaultMaxTotalInsts, "per-request cap on total instruction budget (per-cell budget x cells)")
	defaultInsts := flag.Int64("default-insts", sim.DefaultMaxInsts, "per-cell instruction budget when a request omits max_insts")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request simulation deadline; past it the request gets 504 (0 = no timeout)")
	flag.Parse()

	if *maxInsts <= 0 {
		fmt.Fprintf(os.Stderr, "arvid: -max-insts %d out of range (need >= 1)\n", *maxInsts)
		os.Exit(2)
	}
	if *defaultInsts <= 0 {
		fmt.Fprintf(os.Stderr, "arvid: -default-insts %d out of range (need >= 1)\n", *defaultInsts)
		os.Exit(2)
	}

	eng := &sim.Engine{Workers: *workers}
	if *cacheDir != "" {
		c, err := sim.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		eng.Cache = c
	}
	if !*noTraces {
		ts, err := sim.OpenTraceStore(*traceDir, *traceMem<<20)
		if err != nil {
			fail(err)
		}
		eng.Traces = ts
	}

	h := server.New(server.Config{
		Engine:         eng,
		MaxInflight:    *maxInflight,
		MaxTotalInsts:  *maxInsts,
		DefaultInsts:   *defaultInsts,
		RequestTimeout: *requestTimeout,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: h,
		// Simulations can legitimately take a while; bound only the parts
		// a slow or hostile client controls.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "arvid: serving on %s (cache %q, traces %q)\n", *addr, *cacheDir, traceLabel(*noTraces, *traceDir))

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "arvid: shutting down")
	// Refuse new requests (503 + Retry-After) and cancel in-flight engine
	// work before asking the listener to drain, so Shutdown is bounded by
	// a cancellation checkpoint instead of a full sweep.
	h.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fail(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
}

// traceLabel names the trace tier for the startup line.
func traceLabel(disabled bool, dir string) string {
	if disabled {
		return "(disabled)"
	}
	if dir == "" {
		return "(memory only)"
	}
	return dir
}

// Command arvisim runs a single benchmark through the timing simulator and
// reports its statistics.
//
// Usage:
//
//	arvisim -bench m88ksim -depth 20 -mode arvi-current -n 250000
//	arvisim -bench li -conf-threshold 12      # JRS threshold ablation
//	arvisim -bench gcc -json                  # machine-readable stats
//	arvisim -bench gcc -cache .simcache       # reuse cached results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

var modeNames = map[string]cpu.PredMode{
	"baseline":      cpu.PredBaseline2Lvl,
	"arvi-current":  cpu.PredARVICurrent,
	"arvi-loadback": cpu.PredARVILoadBack,
	"arvi-perfect":  cpu.PredARVIPerfect,
}

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark: gcc compress go ijpeg li m88ksim perl vortex")
	depth := flag.Int("depth", 20, "pipeline depth in stages: 20, 40 or 60")
	mode := flag.String("mode", "arvi-current", "predictor: baseline arvi-current arvi-loadback arvi-perfect")
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget")
	cut := flag.Bool("cut-at-loads", false, "DDT chain ablation: cut chains at loads")
	confTh := flag.Uint("conf-threshold", 0, "JRS confidence threshold override (0 = paper default)")
	jsonOut := flag.Bool("json", false, "emit the spec and raw stats as JSON instead of text")
	cacheDir := flag.String("cache", "", "result cache directory shared with cmd/experiments (empty = no cache)")
	flag.Parse()

	md, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "arvisim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if _, ok := workload.Lookup(*bench); !ok {
		fmt.Fprintf(os.Stderr, "arvisim: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	if *confTh > 255 {
		fmt.Fprintf(os.Stderr, "arvisim: conf-threshold %d out of range\n", *confTh)
		os.Exit(2)
	}

	eng := &sim.Engine{}
	if *cacheDir != "" {
		c, err := sim.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arvisim:", err)
			os.Exit(1)
		}
		eng.Cache = c
	}

	spec := sim.Spec{
		Bench: *bench, Depth: *depth, Mode: md, MaxInsts: *n,
		CutAtLoads: *cut, ConfThreshold: uint8(*confTh),
	}
	results, err := eng.Run([]sim.Spec{spec})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvisim:", err)
		os.Exit(1)
	}
	res := results[0]
	st := res.Stats

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "arvisim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("run            %s\n", res.Spec)
	fmt.Printf("instructions   %d\n", st.Insts)
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("IPC            %.4f\n", st.IPC())
	fmt.Printf("cond branches  %d (taken %.1f%%)\n", st.CondBranches,
		100*float64(st.TakenBranches)/max1(st.CondBranches))
	fmt.Printf("accuracy       %.4f (L1 alone %.4f)\n", st.PredAccuracy(),
		1-float64(st.L1Mispredicts)/max1(st.CondBranches))
	fmt.Printf("overrides      %d (correct %d)\n", st.Overrides, st.OverrideGood)
	if md.UsesARVI() {
		fmt.Printf("branch classes calculated %d / load %d (load fraction %.3f)\n",
			st.CalcBranches, st.LoadBranches, st.LoadBranchFraction())
		fmt.Printf("class accuracy calc %.4f / load %.4f\n",
			st.ClassAccuracy(cpu.ClassCalculated), st.ClassAccuracy(cpu.ClassLoad))
		fmt.Printf("ARVI           lookups %d, hits %d, used %d\n",
			st.ARVILookups, st.ARVIHits, st.ARVIUsed)
		if st.ARVILookups > 0 {
			fmt.Printf("chain profile  avg depth %.1f, avg leaf set %.1f\n",
				float64(st.ChainDepthSum)/float64(st.ARVILookups),
				float64(st.LeafCountSum)/float64(st.ARVILookups))
		}
	}
	fmt.Printf("memory         loads %d, stores %d, forwarded %d\n",
		st.Loads, st.Stores, st.StoreForwarded)
	fmt.Printf("miss rates     L1D %.3f, L2 %.3f, L1I %.3f\n",
		st.L1DMissRate, st.L2MissRate, st.L1IMissRate)
}

func max1(v int64) float64 {
	if v <= 0 {
		return 1
	}
	return float64(v)
}

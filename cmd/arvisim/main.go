// Command arvisim runs a single benchmark through the timing simulator and
// reports its statistics.
//
// Usage:
//
//	arvisim -bench m88ksim -depth 20 -mode arvi-current -n 250000
//	arvisim -bench li -conf-threshold 12      # JRS threshold ablation
//	arvisim -bench gcc -json                  # machine-readable stats
//	arvisim -bench gcc -cache .simcache       # reuse cached results
//	arvisim -bench gcc -record gcc.trc        # record the dynamic trace, no timing
//	arvisim -bench gcc -replay gcc.trc        # replay a recorded trace
//	arvisim -bench gcc -trace-dir .simtraces  # record-once trace store (shared
//	                                          #   with cmd/experiments)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark: gcc compress go ijpeg li m88ksim perl vortex")
	depth := flag.Int("depth", 20, "pipeline depth in stages: 20, 40 or 60")
	mode := flag.String("mode", "arvi-current", "predictor: baseline arvi-current arvi-loadback arvi-perfect")
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget")
	cut := flag.Bool("cut-at-loads", false, "DDT chain ablation: cut chains at loads")
	confTh := flag.Uint("conf-threshold", 0, "JRS confidence threshold override, 1-15 (0 = paper default, not threshold 0)")
	jsonOut := flag.Bool("json", false, "emit the spec and raw stats as JSON instead of text")
	cacheDir := flag.String("cache", "", "result cache directory shared with cmd/experiments (empty = no cache)")
	traceDir := flag.String("trace-dir", "", "trace store directory shared with cmd/experiments (empty = no store)")
	record := flag.String("record", "", "record the benchmark's dynamic trace to this file and exit (no timing run)")
	replay := flag.String("replay", "", "replay the timing model from this trace file instead of a live VM run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	// The validation rules (and their message text) are shared with
	// cmd/experiments and the HTTP service; see internal/sim/validate.go.
	md, err := sim.ParseMode(*mode)
	if err != nil {
		usage(err)
	}
	if err := sim.ValidateBench(*bench); err != nil {
		usage(err)
	}
	if err := sim.ValidateDepth(*depth); err != nil {
		usage(err)
	}
	b, _ := workload.Lookup(*bench)
	if err := sim.ValidateConfThreshold(*confTh); err != nil {
		// The JRS counters are 4-bit: a larger threshold could never be
		// reached and would silently veto every ARVI override.
		usage(err)
	}
	if *record != "" && *replay != "" {
		fmt.Fprintln(os.Stderr, "arvisim: -record and -replay are mutually exclusive")
		os.Exit(2)
	}
	if (*record != "" || *replay != "") && (*cacheDir != "" || *traceDir != "") {
		// Standalone trace files bypass the engine, so silently accepting
		// these would break the "shared with cmd/experiments" promise.
		fmt.Fprintln(os.Stderr, "arvisim: -record/-replay bypass the engine; -cache and -trace-dir do not apply")
		os.Exit(2)
	}

	// Profiling starts only after argument validation (a usage error must
	// not leave a truncated profile behind); fatal() flushes the profiles
	// too, because os.Exit skips the defer.
	flush, err := profiling.Setup(*cpuProfile, *memProfile, "arvisim")
	if err != nil {
		fatal(err)
	}
	flushProfiles = flush
	defer flush()

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		recorded, err := trace.Record(b.Prog, *n, f)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d events of %s to %s\n", recorded, b.Name, *record)
		return
	}

	spec := sim.Spec{
		Bench: *bench, Depth: *depth, Mode: md, MaxInsts: *n,
		CutAtLoads: *cut, ConfThreshold: uint8(*confTh),
	}

	var res sim.Result
	if *replay != "" {
		// Replay bypasses the engine: the trace file is the event source
		// (its header rejects a trace of the wrong program).
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		rd, err := trace.NewReader(b.Prog, f)
		if err != nil {
			fatal(err)
		}
		eng, err := cpu.NewEngine(spec.Config())
		if err != nil {
			fatal(err)
		}
		src := &haltCheckSource{src: rd}
		st, err := eng.RunSource(b.Prog, src)
		_ = f.Close() // read-only replay file

		if err != nil {
			fatal(err)
		}
		// A trace may legitimately end before the budget — but only at a
		// halt. Anything shorter was recorded with a smaller -n, and the
		// stats would silently describe a different run.
		if st.Insts < spec.Config().MaxInsts && !src.halted {
			fatal(fmt.Errorf("trace %s ends after %d events without halting; "+
				"recorded with a smaller budget than -n %d (re-record, or lower -n)",
				*replay, st.Insts, spec.Config().MaxInsts))
		}
		res = sim.Result{Spec: spec, Stats: st}
	} else {
		eng := &sim.Engine{}
		if *cacheDir != "" {
			c, err := sim.OpenCache(*cacheDir)
			if err != nil {
				fatal(err)
			}
			eng.Cache = c
		}
		if *traceDir != "" {
			ts, err := sim.OpenTraceStore(*traceDir, 0)
			if err != nil {
				fatal(err)
			}
			eng.Traces = ts
		}
		// Ctrl-C cancels the run at its next checkpoint instead of leaving
		// a half-written profile or cache temp file behind.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		results, err := eng.Run(ctx, []sim.Spec{spec})
		stop()
		if err != nil {
			fatal(err)
		}
		res = results[0]
	}
	st := res.Stats

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "arvisim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("run            %s\n", res.Spec)
	fmt.Printf("instructions   %d\n", st.Insts)
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("IPC            %.4f\n", st.IPC())
	fmt.Printf("cond branches  %d (taken %.1f%%)\n", st.CondBranches,
		100*float64(st.TakenBranches)/max1(st.CondBranches))
	fmt.Printf("accuracy       %.4f (L1 alone %.4f)\n", st.PredAccuracy(),
		1-float64(st.L1Mispredicts)/max1(st.CondBranches))
	fmt.Printf("overrides      %d (correct %d)\n", st.Overrides, st.OverrideGood)
	if md.UsesARVI() {
		fmt.Printf("branch classes calculated %d / load %d (load fraction %.3f)\n",
			st.CalcBranches, st.LoadBranches, st.LoadBranchFraction())
		fmt.Printf("class accuracy calc %.4f / load %.4f\n",
			st.ClassAccuracy(cpu.ClassCalculated), st.ClassAccuracy(cpu.ClassLoad))
		fmt.Printf("ARVI           lookups %d, hits %d, used %d\n",
			st.ARVILookups, st.ARVIHits, st.ARVIUsed)
		if st.ARVILookups > 0 {
			fmt.Printf("chain profile  avg depth %.1f, avg leaf set %.1f\n",
				float64(st.ChainDepthSum)/float64(st.ARVILookups),
				float64(st.LeafCountSum)/float64(st.ARVILookups))
		}
	}
	fmt.Printf("memory         loads %d, stores %d, forwarded %d\n",
		st.Loads, st.Stores, st.StoreForwarded)
	fmt.Printf("miss rates     L1D %.3f, L2 %.3f, L1I %.3f\n",
		st.L1DMissRate, st.L2MissRate, st.L1IMissRate)
}

// haltCheckSource passes events through while remembering whether the
// last one was the program halting, so a budget-truncated trace can be
// told apart from a naturally ending one.
type haltCheckSource struct {
	src    cpu.EventSource
	halted bool
}

func (s *haltCheckSource) Next(ev *vm.Event) error {
	err := s.src.Next(ev)
	if err == nil {
		s.halted = ev.Inst.Op == isa.OpHalt
	}
	return err
}

// flushProfiles is profiling.Setup's flush once configured; fatal routes
// through it so error exits still produce usable profiles (the flush is
// idempotent, so the deferred call after a fatal-free run is harmless).
var flushProfiles = func() {}

func fatal(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "arvisim:", err)
	os.Exit(1)
}

// usage rejects bad arguments with exit status 2 (before profiling has
// been configured, so there is nothing to flush).
func usage(err error) {
	fmt.Fprintln(os.Stderr, "arvisim:", err)
	os.Exit(2)
}

func max1(v int64) float64 {
	if v <= 0 {
		return 1
	}
	return float64(v)
}

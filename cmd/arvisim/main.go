// Command arvisim runs a single benchmark through the timing simulator and
// reports its statistics.
//
// Usage:
//
//	arvisim -bench m88ksim -depth 20 -mode arvi-current -n 250000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu"
	"repro/internal/sim"
	"repro/internal/workload"
)

var modeNames = map[string]cpu.PredMode{
	"baseline":      cpu.PredBaseline2Lvl,
	"arvi-current":  cpu.PredARVICurrent,
	"arvi-loadback": cpu.PredARVILoadBack,
	"arvi-perfect":  cpu.PredARVIPerfect,
}

func main() {
	bench := flag.String("bench", "m88ksim", "benchmark: gcc compress go ijpeg li m88ksim perl vortex")
	depth := flag.Int("depth", 20, "pipeline depth in stages: 20, 40 or 60")
	mode := flag.String("mode", "arvi-current", "predictor: baseline arvi-current arvi-loadback arvi-perfect")
	n := flag.Int64("n", sim.DefaultMaxInsts, "dynamic instruction budget")
	cut := flag.Bool("cut-at-loads", false, "DDT chain ablation: cut chains at loads")
	flag.Parse()

	md, ok := modeNames[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "arvisim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	found := false
	for _, w := range workload.Names {
		if w == *bench {
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "arvisim: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	res, err := sim.Simulate(sim.Spec{
		Bench: *bench, Depth: *depth, Mode: md, MaxInsts: *n, CutAtLoads: *cut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "arvisim:", err)
		os.Exit(1)
	}
	st := res.Stats
	fmt.Printf("run            %s\n", res.Spec)
	fmt.Printf("instructions   %d\n", st.Insts)
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("IPC            %.4f\n", st.IPC())
	fmt.Printf("cond branches  %d (taken %.1f%%)\n", st.CondBranches,
		100*float64(st.TakenBranches)/max1(st.CondBranches))
	fmt.Printf("accuracy       %.4f (L1 alone %.4f)\n", st.PredAccuracy(),
		1-float64(st.L1Mispredicts)/max1(st.CondBranches))
	fmt.Printf("overrides      %d (correct %d)\n", st.Overrides, st.OverrideGood)
	if md.UsesARVI() {
		fmt.Printf("branch classes calculated %d / load %d (load fraction %.3f)\n",
			st.CalcBranches, st.LoadBranches, st.LoadBranchFraction())
		fmt.Printf("class accuracy calc %.4f / load %.4f\n",
			st.ClassAccuracy(cpu.ClassCalculated), st.ClassAccuracy(cpu.ClassLoad))
		fmt.Printf("ARVI           lookups %d, hits %d, used %d\n",
			st.ARVILookups, st.ARVIHits, st.ARVIUsed)
		if st.ARVILookups > 0 {
			fmt.Printf("chain profile  avg depth %.1f, avg leaf set %.1f\n",
				float64(st.ChainDepthSum)/float64(st.ARVILookups),
				float64(st.LeafCountSum)/float64(st.ARVILookups))
		}
	}
	fmt.Printf("memory         loads %d, stores %d, forwarded %d\n",
		st.Loads, st.Stores, st.StoreForwarded)
	fmt.Printf("miss rates     L1D %.3f, L2 %.3f, L1I %.3f\n",
		st.L1DMissRate, st.L2MissRate, st.L1IMissRate)
}

func max1(v int64) float64 {
	if v <= 0 {
		return 1
	}
	return float64(v)
}
